"""Interval lattice: order, join/meet/widen/narrow, transfer soundness."""

import random

import pytest

from repro.dfg.graph import OPCODE_ARITY, Opcode
from repro.dpax.pe import INT32_MAX, INT32_MIN
from repro.static.intervals import (
    INT32,
    Interval,
    IntervalDomain,
    WIDENING_RAILS,
    transfer,
)


class TestLattice:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_unbounded_endpoints(self):
        top = Interval.top()
        assert not top.bounded
        assert top.contains(-(10**18)) and top.contains(10**18)
        assert Interval(0, None).contains(10**18)
        assert not Interval(0, None).contains(-1)

    def test_join_is_hull(self):
        assert Interval(0, 3).join(Interval(10, 12)) == Interval(0, 12)
        assert Interval(None, 0).join(Interval(5, 9)) == Interval(None, 9)

    def test_meet_of_disjoint_is_none(self):
        assert Interval(0, 3).meet(Interval(10, 12)) is None
        assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)

    def test_within_and_ordering(self):
        domain = IntervalDomain()
        assert Interval(1, 2).within(Interval(0, 3))
        assert domain.leq(Interval(1, 2), Interval.top())
        assert not domain.leq(Interval.top(), Interval(1, 2))

    def test_widen_jumps_to_rails(self):
        older = Interval(0, 100)
        newer = Interval(0, 150)
        widened = older.widen(newer)
        # 150 grows past 100, so the high endpoint jumps to the first
        # rail at or above it rather than creeping by 50 each pass.
        assert widened.hi in WIDENING_RAILS
        assert widened.hi >= 150
        # Stable endpoints never move.
        assert widened.lo == 0

    def test_widen_is_ascending(self):
        older = Interval(-5, 5)
        newer = Interval(-2000, 3_000_000)
        widened = older.widen(newer)
        assert newer.within(widened) and older.within(widened)

    def test_narrow_refines_only_infinite_endpoints(self):
        widened = Interval(0, None)
        refined = widened.narrow(Interval(0, 700))
        assert refined == Interval(0, 700)
        # A finite endpoint is a proof; narrowing never loosens it.
        assert Interval(0, 10).narrow(Interval(0, 700)) == Interval(0, 10)


def _concrete_apply(opcode, args):
    """The functional model's scalar semantics, for sampling checks."""
    from repro.dfg import graph

    return graph._apply(opcode, list(args), None, None)


_SAMPLED_OPCODES = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.MAX,
    Opcode.MIN,
    Opcode.SHL16,
    Opcode.SHR16,
    Opcode.CARRY,
    Opcode.BORROW,
    Opcode.CMP_GT,
    Opcode.CMP_EQ,
    Opcode.LOG2_LUT,
    Opcode.LOG_SUM_LUT,
]


class TestTransferSoundness:
    @pytest.mark.parametrize("opcode", _SAMPLED_OPCODES, ids=lambda o: o.value)
    def test_concrete_results_inside_abstract(self, opcode):
        rng = random.Random(hash(opcode.value) & 0xFFFF)
        arity = OPCODE_ARITY[opcode]
        for _ in range(200):
            intervals = []
            points = []
            for _ in range(arity):
                a = rng.randint(-(1 << 18), 1 << 18)
                b = rng.randint(-(1 << 18), 1 << 18)
                lo, hi = min(a, b), max(a, b)
                intervals.append(Interval(lo, hi))
                points.append(rng.randint(lo, hi))
            abstract = transfer(opcode, intervals)
            concrete = _concrete_apply(opcode, points)
            assert abstract.contains(concrete), (
                f"{opcode.value}{points} = {concrete} "
                f"outside {abstract} (from {intervals})"
            )

    def test_mul_sign_corners(self):
        result = transfer(Opcode.MUL, [Interval(-3, 2), Interval(-5, 7)])
        # Corners: (-3)*7=-21 and (-3)*(-5)=15.
        assert result == Interval(-21, 15)

    def test_match_score_uses_contract_range(self):
        default = transfer(Opcode.MATCH_SCORE, [Interval(0, 3), Interval(0, 3)])
        assert default == Interval(-1, 1)
        custom = transfer(
            Opcode.MATCH_SCORE,
            [Interval(0, 3), Interval(0, 3)],
            match_range=Interval(-4, 10),
        )
        assert custom == Interval(-4, 10)

    def test_log2_lut_joins_zero_for_nonpositive_inputs(self):
        # The LUT maps value <= 0 to 0; an interval straddling zero must
        # therefore include 0 in its image.
        result = transfer(Opcode.LOG2_LUT, [Interval(-5, 1 << 12)])
        assert result.contains(0)

    def test_arity_mismatch_rejected(self):
        domain = IntervalDomain()
        with pytest.raises(ValueError):
            domain.transfer(Opcode.ADD, [Interval(0, 1)])

    def test_int32_constant(self):
        assert INT32 == Interval(INT32_MIN, INT32_MAX)
