"""The gendp-analyze report: structure, exit codes, CLI plumbing."""

import json

from repro.diagnostics import Severity
from repro.static import run_analysis
from repro.static.report import AnalysisReport, ProgramAnalysisEntry


class TestRunAnalysis:
    def test_full_sweep_is_clean_and_certifies_two_plus(self):
        report = run_analysis()
        assert report.ok, report.render()
        assert len(report.certified) >= 2
        assert report.exit_code(Severity.ERROR) == 0

    def test_kernel_subset(self):
        report = run_analysis(["dtw"])
        names = [p.name for p in report.programs]
        assert "dtw" in names and "dtw:wavefront" in names
        assert report.certified == ("dtw",)

    def test_wavefront_can_be_skipped(self):
        report = run_analysis(["dtw"], include_wavefront=False)
        assert [p.name for p in report.programs] == ["dtw"]

    def test_json_shape_is_stable(self):
        report = run_analysis(["chain"], include_wavefront=False)
        data = json.loads(json.dumps(report.to_dict()))
        assert set(data) == {
            "programs",
            "certified",
            "errors",
            "warnings",
            "notes",
            "ok",
        }
        program = data["programs"][0]
        assert program["name"] == "chain"
        # Harness-only interval tables stay out of the artifact.
        assert "observed_intervals" not in program["certificate"]

    def test_render_mentions_certification_status(self):
        text = run_analysis(["bsw"], include_wavefront=False).render()
        assert "sentinels stay armed" in text
        assert "possible-lane-saturation" in text


class TestExitCodes:
    def test_fail_on_threshold(self):
        report = run_analysis(["bsw"], include_wavefront=False)
        # BSW carries a lane-saturation warning: failing at warning
        # severity flips the exit code, failing at error does not.
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1

    def test_empty_report_is_ok(self):
        report = AnalysisReport(programs=())
        assert report.ok and report.exit_code() == 0


class TestCli:
    def test_analyze_main_text_and_json(self, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["--kernels", "dtw", "--no-wavefront"]) == 0
        text = capsys.readouterr().out
        assert "certified" in text

        assert (
            analyze_main(
                ["--kernels", "dtw", "--no-wavefront", "--format", "json"]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] and data["certified"] == ["dtw"]

    def test_analyze_main_fail_on_warning(self, capsys):
        from repro.cli import analyze_main

        code = analyze_main(
            ["--kernels", "bsw", "--no-wavefront", "--fail-on", "warning"]
        )
        capsys.readouterr()
        assert code == 1

    def test_lint_main_format_json(self, capsys):
        from repro.cli import lint_main

        assert lint_main(["--format", "json", "--kernels", "dtw"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "programs" in data
