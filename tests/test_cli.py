"""Tests for the command-line tools."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import batch_main, compile_main, report_main, simulate_main


class TestCompile:
    def test_default_prints_program(self, capsys):
        assert compile_main(["bsw"]) == 0
        out = capsys.readouterr().out
        assert "VLIW bundles/cell : 4" in out
        assert "compute program:" in out
        assert "match_score" in out

    def test_stats_only(self, capsys):
        compile_main(["lcs", "--stats-only"])
        out = capsys.readouterr().out
        assert "compute program:" not in out
        assert "CU utilization" in out

    def test_levels_study(self, capsys):
        compile_main(["chain", "--levels", "1"])
        out = capsys.readouterr().out
        assert "tree depth        : 1" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            compile_main(["nope"])


class TestSimulate:
    def test_lcs_simulation(self, capsys):
        assert simulate_main(["lcs"]) == 0
        out = capsys.readouterr().out
        assert "cycles/cell" in out
        assert "projected MCUPS" in out


class TestReport:
    def test_summary_report(self, capsys):
        assert report_main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(a)" in out
        assert "Table 11" in out
        assert "Table 12" in out
        assert "headlines" in out


class TestBatch:
    def test_small_stream_validates(self, capsys):
        assert batch_main(
            ["--jobs", "9", "--kernels", "bsw,lcs", "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "job stream summary" in out
        assert "DPMap compiles      : 2" in out
        assert "[PASS]" in out

    def test_json_snapshot(self, capsys):
        assert batch_main(
            ["--jobs", "4", "--kernels", "lcs", "--workers", "0", "--json"]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["cache"]["compiles"] == 1
        assert snapshot["counters"]["jobs_completed"] == 4
        assert snapshot["wall_seconds"] > 0

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"kernel": "lcs", "payload": {"x": "ACGT", "y": "AGT"}},
                        {
                            "kernel": "lcs",
                            "payload": {"x": "TTTT", "y": "TT"},
                            "priority": 3,
                        },
                    ]
                }
            )
        )
        assert batch_main(["--spec", str(spec), "--workers", "0"]) == 0
        assert "2" in capsys.readouterr().out

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(SystemExit):
            batch_main(["--kernels", ",", "--workers", "0"])


class TestPipeSafety:
    def test_broken_pipe_exits_quietly(self, tmp_path):
        # Run a report into a consumer that hangs up after one line; the
        # wrapped entry point must neither traceback nor exit nonzero.
        script = tmp_path / "pipeline.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import report_main\n"
            "sys.exit(report_main([]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.run(
            f"{sys.executable} {script} | head -1",
            shell=True,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr

    def test_broken_pipe_on_stderr_swallowed(self, tmp_path):
        # A BrokenPipeError raised while writing to stderr must also be
        # swallowed by the wrapper (argparse + warnings use stderr).
        script = tmp_path / "stderr_pipe.py"
        script.write_text(
            "from repro.cli import _pipe_safe\n"
            "@_pipe_safe\n"
            "def main(argv=None):\n"
            "    raise BrokenPipeError('stderr hung up')\n"
            "raise SystemExit(main([]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr
