"""Tests for the command-line tools."""

import pytest

from repro.cli import compile_main, report_main, simulate_main


class TestCompile:
    def test_default_prints_program(self, capsys):
        assert compile_main(["bsw"]) == 0
        out = capsys.readouterr().out
        assert "VLIW bundles/cell : 4" in out
        assert "compute program:" in out
        assert "match_score" in out

    def test_stats_only(self, capsys):
        compile_main(["lcs", "--stats-only"])
        out = capsys.readouterr().out
        assert "compute program:" not in out
        assert "CU utilization" in out

    def test_levels_study(self, capsys):
        compile_main(["chain", "--levels", "1"])
        out = capsys.readouterr().out
        assert "tree depth        : 1" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            compile_main(["nope"])


class TestSimulate:
    def test_lcs_simulation(self, capsys):
        assert simulate_main(["lcs"]) == 0
        out = capsys.readouterr().out
        assert "cycles/cell" in out
        assert "projected MCUPS" in out


class TestReport:
    def test_summary_report(self, capsys):
        assert report_main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(a)" in out
        assert "Table 11" in out
        assert "Table 12" in out
        assert "headlines" in out
