"""Tests for the command-line tools."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import (
    batch_main,
    chaos_main,
    compile_main,
    guard_main,
    lint_main,
    metrics_main,
    report_main,
    simulate_main,
    trace_main,
)


class TestCompile:
    def test_default_prints_program(self, capsys):
        assert compile_main(["bsw"]) == 0
        out = capsys.readouterr().out
        assert "VLIW bundles/cell : 4" in out
        assert "compute program:" in out
        assert "match_score" in out

    def test_stats_only(self, capsys):
        compile_main(["lcs", "--stats-only"])
        out = capsys.readouterr().out
        assert "compute program:" not in out
        assert "CU utilization" in out

    def test_levels_study(self, capsys):
        compile_main(["chain", "--levels", "1"])
        out = capsys.readouterr().out
        assert "tree depth        : 1" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            compile_main(["nope"])

    def test_stats_prints_before_after_costs(self, capsys):
        assert compile_main(["bsw", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "optimizer cost model (before -> after):" in out
        assert "bundles/cell    : 4 -> 3" in out

    def test_stats_requires_hardware_depth(self):
        with pytest.raises(SystemExit):
            compile_main(["bsw", "--stats", "--levels", "1"])


class TestLint:
    def test_all_kernels_exit_zero(self, capsys):
        assert lint_main([]) == 0
        out = capsys.readouterr().out
        assert "gendp-lint: 7 programs, 0 errors" in out

    def test_kernel_subset_and_json(self, capsys):
        assert lint_main(["--kernels", "dtw", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert [p["name"] for p in data["programs"]] == ["dtw"]

    def test_fail_on_info_trips_on_known_notes(self, capsys):
        assert lint_main(["--kernels", "bsw", "--fail-on", "info"]) == 1

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            lint_main(["--kernels", "nope"])


class TestSimulate:
    def test_lcs_simulation(self, capsys):
        assert simulate_main(["lcs"]) == 0
        out = capsys.readouterr().out
        assert "cycles/cell" in out
        assert "projected MCUPS" in out


class TestReport:
    def test_summary_report(self, capsys):
        assert report_main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(a)" in out
        assert "Table 11" in out
        assert "Table 12" in out
        assert "headlines" in out


class TestBatch:
    def test_small_stream_validates(self, capsys):
        assert batch_main(
            ["--jobs", "9", "--kernels", "bsw,lcs", "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "job stream summary" in out
        assert "DPMap compiles      : 2" in out
        assert "[PASS]" in out

    def test_json_snapshot(self, capsys):
        assert batch_main(
            ["--jobs", "4", "--kernels", "lcs", "--workers", "0", "--json"]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["cache"]["compiles"] == 1
        assert snapshot["counters"]["jobs_completed"] == 4
        assert snapshot["wall_seconds"] > 0

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"kernel": "lcs", "payload": {"x": "ACGT", "y": "AGT"}},
                        {
                            "kernel": "lcs",
                            "payload": {"x": "TTTT", "y": "TT"},
                            "priority": 3,
                        },
                    ]
                }
            )
        )
        assert batch_main(["--spec", str(spec), "--workers", "0"]) == 0
        assert "2" in capsys.readouterr().out

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(SystemExit):
            batch_main(["--kernels", ",", "--workers", "0"])

    def _failing_spec(self, tmp_path):
        # The failing job leads, so --fail-fast has later chunks to cut.
        spec = tmp_path / "jobs.json"
        spec.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "kernel": "lcs",
                            "payload": {
                                "x": "ACGT", "y": "AC", "_inject_fail": True,
                            },
                        },
                        {"kernel": "lcs", "payload": {"x": "ACGT", "y": "AGT"}},
                        {"kernel": "lcs", "payload": {"x": "TTTT", "y": "TT"}},
                    ]
                }
            )
        )
        return spec

    def test_nonzero_exit_when_a_job_fails(self, tmp_path, capsys):
        spec = self._failing_spec(tmp_path)
        assert batch_main(["--spec", str(spec), "--workers", "0"]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_fail_fast_stops_the_stream(self, tmp_path, capsys):
        spec = self._failing_spec(tmp_path)
        assert batch_main(
            ["--spec", str(spec), "--workers", "0", "--chunk", "1",
             "--fail-fast"]
        ) == 1
        out = capsys.readouterr().out
        assert "fail-fast           : stopped after 1/3 jobs" in out
        assert "degraded batches" in out

    def test_report_includes_reliability_lines(self, capsys):
        batch_main(["--jobs", "4", "--kernels", "lcs", "--workers", "0"])
        out = capsys.readouterr().out
        assert "degraded batches    : 0 (0 retries, 0 dead letters)" in out

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        assert batch_main(
            ["--jobs", "4", "--kernels", "lcs", "--workers", "0",
             "--metrics-out", str(out_path)]
        ) == 0
        capsys.readouterr()
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["jobs_completed"] == 4
        for histogram in snapshot["histograms"].values():
            assert "quantiles" in histogram


class TestTrace:
    def test_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs.trace import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert trace_main(
            ["--jobs", "6", "--kernels", "bsw,lcs", "--workers", "0",
             "--out", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace id" in out
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert {
            "job:submit", "job:queue", "batch:compile", "batch:execute",
            "job:run", "engine:drain",
        } <= names

    def test_metrics_out_alongside_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert trace_main(
            ["--jobs", "4", "--kernels", "lcs", "--workers", "0",
             "--out", str(trace_path), "--metrics-out", str(metrics_path)]
        ) == 0
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["jobs_completed"] == 4


class TestMetricsCLI:
    def _snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        batch_main(
            ["--jobs", "4", "--kernels", "lcs", "--workers", "0",
             "--metrics-out", str(path)]
        )
        capsys.readouterr()
        return path

    def test_render_prometheus(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path, capsys)
        assert metrics_main(["render", "--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE gendp_jobs_completed_total counter" in out
        assert "gendp_jobs_completed_total 4" in out

    def test_render_json(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path, capsys)
        assert metrics_main(
            ["render", "--snapshot", str(path), "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counters"]["jobs_completed"] == 4

    def test_serve_requires_a_source(self):
        with pytest.raises(SystemExit):
            metrics_main(["serve"])
        with pytest.raises(SystemExit):
            metrics_main(["serve", "--snapshot", "x.json", "--demo"])

    def test_serve_snapshot_for_duration(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path, capsys)
        assert metrics_main(
            ["serve", "--snapshot", str(path), "--port", "0",
             "--duration", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving metrics on http://127.0.0.1:" in out


class TestGracefulShutdown:
    def test_flag_latches_first_signal(self):
        import signal as _signal
        import time

        from repro.cli import _graceful_shutdown

        with _graceful_shutdown() as flag:
            assert not flag.tripped
            os.kill(os.getpid(), _signal.SIGTERM)
            deadline = time.time() + 2.0
            while not flag.tripped and time.time() < deadline:
                time.sleep(0.01)  # handlers run between bytecodes
            assert flag.tripped
            assert flag.signum == _signal.SIGTERM
        # Handlers are restored on exit.
        assert _signal.getsignal(_signal.SIGTERM) is not flag.trip

    def test_sigterm_drains_chunk_and_exits_128_plus_signum(self, tmp_path):
        import signal as _signal
        import time

        script = tmp_path / "stream.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import batch_main\n"
            "sys.exit(batch_main(['--jobs', '4000', '--kernels', 'lcs',\n"
            "                     '--workers', '0', '--chunk', '8',\n"
            "                     '--no-validate']))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(1.5)  # let it get into the chunk loop
        proc.send_signal(_signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 128 + _signal.SIGTERM
        assert "shutdown" in out  # the partial report still printed
        assert "Traceback" not in err


class TestChaos:
    def test_small_inline_campaign_survives(self, capsys):
        assert chaos_main(
            ["--jobs", "16", "--seed", "9", "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "gendp-chaos: seeded campaign report" in out
        assert "verdict             : SURVIVED" in out

    def test_json_report(self, capsys):
        assert chaos_main(
            ["--jobs", "16", "--seed", "9", "--workers", "0", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["survived"] is True
        assert report["lost"] == 0
        assert report["config"]["seed"] == 9

    def test_bad_rates_become_parser_errors(self):
        with pytest.raises(SystemExit):
            chaos_main(["--crash-rate", "1.5"])
        with pytest.raises(SystemExit):
            chaos_main(["--crash-rate", "0.6", "--corrupt-rate", "0.6"])

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(SystemExit):
            chaos_main(["--kernels", ","])


class TestPipeSafety:
    def test_broken_pipe_exits_quietly(self, tmp_path):
        # Run a report into a consumer that hangs up after one line; the
        # wrapped entry point must neither traceback nor exit nonzero.
        script = tmp_path / "pipeline.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import report_main\n"
            "sys.exit(report_main([]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.run(
            f"{sys.executable} {script} | head -1",
            shell=True,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr

    def test_broken_pipe_on_stderr_swallowed(self, tmp_path):
        # A BrokenPipeError raised while writing to stderr must also be
        # swallowed by the wrapper (argparse + warnings use stderr).
        script = tmp_path / "stderr_pipe.py"
        script.write_text(
            "from repro.cli import _pipe_safe\n"
            "@_pipe_safe\n"
            "def main(argv=None):\n"
            "    raise BrokenPipeError('stderr hung up')\n"
            "raise SystemExit(main([]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr


class TestGuard:
    def test_small_campaign_is_clean(self, capsys):
        assert guard_main(
            ["--seed", "5", "--jobs-per-kernel", "2", "--kernels", "dtw,bsw"]
        ) == 0
        out = capsys.readouterr().out
        assert "gendp-guard campaign" in out
        assert "CLEAN" in out

    def test_json_report(self, capsys):
        assert guard_main(
            ["--seed", "5", "--jobs-per-kernel", "2", "--kernels", "dtw", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["total_cases"] == 2
        assert report["config"]["seed"] == 5

    def test_checkpoint_resume_via_cli(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "guard.json")
        common = [
            "--seed", "5", "--jobs-per-kernel", "3",
            "--kernels", "dtw,bellman_ford",
            "--checkpoint", checkpoint, "--checkpoint-every", "1", "--json",
        ]
        assert guard_main(common + ["--max-cases", "2"]) == 0
        partial = json.loads(capsys.readouterr().out)
        assert partial["total_cases"] == 2
        assert guard_main(common) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["total_cases"] == 6 and resumed["clean"] is True

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            guard_main(["--kernels", "warp-drive"])

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SystemExit):
            guard_main(["--jobs-per-kernel", "0"])
