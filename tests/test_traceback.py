"""Tests for traceback reconstruction from accelerator trace output."""

import pytest

from repro.kernels.base import TracebackOp
from repro.kernels.poa import PartialOrderGraph, graph_dp_tables
from repro.mapping.longrange import run_poa_row_dp
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.traceback import (
    best_cell,
    cigar_consumes,
    poa_traceback,
    score_pairs,
    traceback_table,
)


def simulate_poa(rng, length=14, reads=2):
    template = random_sequence(length, rng)
    mutator = Mutator(MutationProfile.nanopore(), rng)
    graph = PartialOrderGraph(template)
    for _ in range(reads):
        graph.add_sequence(mutator.mutate(template))
    query = mutator.mutate(template)
    run = run_poa_row_dp(graph, query)
    assert run.finished
    return graph, query, run


class TestBestCell:
    def test_finds_maximum(self):
        h = [[0, 1], [5, 2]]
        assert best_cell(h) == (1, 0)

    def test_first_hit_on_ties(self):
        h = [[3, 3], [3, 3]]
        assert best_cell(h) == (0, 0)


class TestTableTraceback:
    def test_perfect_match_is_all_diagonal(self, rng):
        graph = PartialOrderGraph("ACGTACGT")  # a chain: 2D semantics
        run = run_poa_row_dp(graph, "ACGTACGT")
        cigar = traceback_table(run.h, run.directions)
        assert cigar == [(TracebackOp.MATCH, 8)]

    def test_consumption_matches_start_cell(self, rng):
        graph, query, run = simulate_poa(rng)
        start = best_cell(run.h)
        cigar = traceback_table(run.h, run.directions, start)
        rows, cols = cigar_consumes(cigar)
        assert rows <= start[0] + 1
        assert cols <= start[1] + 1

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            traceback_table([[5]], [[9]])


class TestPOATraceback:
    def test_chain_graph_path_matches_reference_score(self, rng):
        # A linear graph: the trace path is unique, so the re-scored
        # path must reproduce the best H exactly.
        graph = PartialOrderGraph(random_sequence(12, rng))
        query = Mutator(MutationProfile.illumina(), rng).mutate(
            "".join(node.base for node in graph.nodes)
        )
        if not query:
            query = "ACGT"
        run = run_poa_row_dp(graph, query)
        start = best_cell(run.h)
        pairs = poa_traceback(run.h, run.directions, graph, start)
        assert score_pairs(pairs, graph, query) == run.h[start[0]][start[1]]

    def test_branchy_graph_score_preserved(self, rng):
        # With branches, ties may pick different-but-equal paths; the
        # re-scored path still equals the traced H.
        for _ in range(3):
            graph, query, run = simulate_poa(rng)
            start = best_cell(run.h)
            pairs = poa_traceback(run.h, run.directions, graph, start)
            assert score_pairs(pairs, graph, query) == run.h[start[0]][start[1]]

    def test_pairs_reference_valid_nodes(self, rng):
        graph, query, run = simulate_poa(rng)
        pairs = poa_traceback(run.h, run.directions, graph)
        for node_index, seq_index in pairs:
            if node_index is not None:
                assert 0 <= node_index < len(graph.nodes)
            if seq_index is not None:
                assert 0 <= seq_index < len(query)

    def test_matches_reference_tables_traceback(self, rng):
        # The simulator's trace and the reference tables agree on the
        # start cell and its value.
        graph, query, run = simulate_poa(rng)
        reference_h, _, _ = graph_dp_tables(graph, query)
        sim_row, sim_col = best_cell(run.h)
        assert run.h[sim_row][sim_col] == max(
            max(row[1:]) for row in reference_h
        )


class TestScorePairs:
    def test_affine_gap_runs(self):
        graph = PartialOrderGraph("ACGT")
        # match, two vertical gaps (one open + one extend), match.
        pairs = [(0, 0), (1, None), (2, None), (3, 1)]
        score = score_pairs(pairs, graph, "AT")
        assert score == 1 - (4 + 1) - 1 + 1

    def test_alternating_gaps_reopen(self):
        graph = PartialOrderGraph("ACGT")
        pairs = [(0, None), (None, 0)]
        assert score_pairs(pairs, graph, "A") == -2 * (4 + 1)
