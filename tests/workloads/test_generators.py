"""Tests for the synthetic workload generators."""

import pytest

from repro.workloads import (
    generate_bf_workload,
    generate_bsw_workload,
    generate_chain_workload,
    generate_dtw_workload,
    generate_pairhmm_workload,
    generate_poa_workload,
)


class TestBSWWorkload:
    def test_shape(self):
        workload = generate_bsw_workload(count=10, query_length=100, target_length=60)
        assert len(workload.pairs) == 10
        assert all(len(p.query) == 100 and len(p.target) == 60 for p in workload.pairs)

    def test_pairs_are_related(self):
        from repro.kernels.bsw import banded_sw

        workload = generate_bsw_workload(count=5, seed=1)
        for pair in workload.pairs:
            # A related pair scores far above random expectation.
            assert banded_sw(pair.query, pair.target, band=10).score > 20

    def test_total_cells_counts_band(self):
        workload = generate_bsw_workload(count=2, query_length=20, target_length=20, band=2)
        assert workload.total_cells < 2 * 400

    def test_deterministic(self):
        a = generate_bsw_workload(count=3, seed=9)
        b = generate_bsw_workload(count=3, seed=9)
        assert [p.query for p in a.pairs] == [p.query for p in b.pairs]

    def test_seed_changes_data(self):
        a = generate_bsw_workload(count=3, seed=1)
        b = generate_bsw_workload(count=3, seed=2)
        assert [p.query for p in a.pairs] != [p.query for p in b.pairs]


class TestPairHMMWorkload:
    def test_all_pairs_per_region(self):
        workload = generate_pairhmm_workload(
            regions=2, reads_per_region=3, haplotypes_per_region=2
        )
        assert len(workload.pairs) == 2 * 3 * 2

    def test_true_haplotype_scores_best_on_average(self):
        from repro.kernels.pairhmm import pairhmm_forward

        workload = generate_pairhmm_workload(
            regions=3, reads_per_region=2, haplotypes_per_region=2,
            read_length=40, haplotype_length=40, seed=5,
        )
        wins = total = 0
        by_read = {}
        for pair in workload.pairs:
            by_read.setdefault((pair.region, pair.read), []).append(pair)
        for pairs in by_read.values():
            scores = [
                pairhmm_forward(p.read, p.haplotype, qualities=p.qualities)
                for p in pairs
            ]
            best = scores.index(max(scores))
            total += 1
            if best == pairs[0].true_haplotype:
                wins += 1
        assert wins >= total // 2

    def test_qualities_match_read_length(self):
        workload = generate_pairhmm_workload(regions=1, reads_per_region=2)
        for pair in workload.pairs:
            assert len(pair.qualities) == len(pair.read)


class TestChainWorkload:
    def test_anchors_sorted(self):
        workload = generate_chain_workload(tasks=2, anchors_per_task=100)
        for task in workload.tasks:
            keys = [(a.x, a.y) for a in task.anchors]
            assert keys == sorted(keys)

    def test_collinear_run_is_chainable(self):
        from repro.kernels.chain import chain_original, chain_query_coverage

        workload = generate_chain_workload(
            tasks=1, anchors_per_task=200, collinear_fraction=0.8, seed=2
        )
        task = workload.tasks[0]
        result = chain_original(task.anchors)
        q_span, _ = chain_query_coverage(task.anchors, result.backtrack())
        # The best chain recovers a good share of the planted overlap.
        assert q_span > task.true_span * 0.5

    def test_total_cells_window_dependent(self):
        workload = generate_chain_workload(tasks=1, anchors_per_task=500)
        assert workload.total_cells(64) > workload.total_cells(25)


class TestPOAWorkload:
    def test_group_shape(self):
        workload = generate_poa_workload(tasks=2, reads_per_task=5, template_length=50)
        assert len(workload.tasks) == 2
        assert all(len(t.reads) == 5 for t in workload.tasks)

    def test_reads_resemble_template(self):
        from repro.kernels.sw import align

        workload = generate_poa_workload(tasks=1, reads_per_task=3, template_length=60)
        task = workload.tasks[0]
        for read in task.reads:
            assert align(read, task.template).score > 15

    def test_cells_accounting(self):
        workload = generate_poa_workload(tasks=1, reads_per_task=3, template_length=40)
        assert workload.total_cells > 0


class TestDTWWorkload:
    def test_matches_and_decoys_alternate(self):
        workload = generate_dtw_workload(pairs=6)
        flags = [p.is_match for p in workload.pairs]
        assert flags == [True, False] * 3

    def test_matching_pairs_are_closer(self):
        from repro.kernels.dtw import dtw_distance

        workload = generate_dtw_workload(pairs=6, length=60, seed=4)
        match_distances = [
            dtw_distance(p.reference, p.query) / len(p.reference)
            for p in workload.pairs if p.is_match
        ]
        decoy_distances = [
            dtw_distance(p.reference, p.query) / len(p.reference)
            for p in workload.pairs if not p.is_match
        ]
        assert max(match_distances) < max(decoy_distances)


class TestBFWorkload:
    def test_roadmap_connected_enough(self):
        from repro.kernels.bellman_ford import bellman_ford

        workload = generate_bf_workload(vertices=50, neighbors=5, seed=8)
        result = bellman_ford(
            workload.vertex_count, workload.edges, source=workload.source
        )
        reachable = sum(1 for d in result.distances if d != float("inf"))
        assert reachable > 40

    def test_edges_bidirectional(self):
        workload = generate_bf_workload(vertices=10, neighbors=2)
        pairs = {(e.src, e.dst) for e in workload.edges}
        assert all((dst, src) in pairs for src, dst in pairs)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_bf_workload(vertices=1)
