"""Tests for the workload sizing estimates."""

import pytest

from repro.workloads.sizing import (
    FULL_DATASET_CELLS,
    cells_for_budget,
    estimate_simulation,
    full_dataset_estimate,
)


class TestEstimates:
    def test_linear_in_cells(self):
        one = estimate_simulation("bsw", 1000)
        two = estimate_simulation("bsw", 2000)
        assert two.seconds == pytest.approx(2 * one.seconds)

    def test_budget_inverse(self):
        cells = cells_for_budget("poa", 60.0)
        assert estimate_simulation("poa", cells).seconds == pytest.approx(
            60.0, rel=0.01
        )

    def test_full_dataset_impractical(self):
        # The reason every experiment here uses synthetic slices.
        for kernel in FULL_DATASET_CELLS:
            assert full_dataset_estimate(kernel).hours > 100

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            estimate_simulation("zzz", 1)

    def test_negative_cells(self):
        with pytest.raises(ValueError):
            estimate_simulation("bsw", -1)

    def test_rates_roughly_track_measurements(self):
        # One small measured run per kernel family keeps the table
        # honest within an order of magnitude (host-dependent).
        import time

        from repro.mapping.kernels2d import lcs_wavefront_spec
        from repro.mapping.wavefront2d import run_wavefront
        from repro.seq.alphabet import encode, random_sequence
        import random

        rng = random.Random(1)
        start = time.perf_counter()
        run = run_wavefront(
            lcs_wavefront_spec(),
            target=encode(random_sequence(8, rng)),
            stream=encode(random_sequence(32, rng)),
        )
        elapsed = time.perf_counter() - start
        measured_rate = run.cells / elapsed
        assert measured_rate > 100  # not catastrophically slower
